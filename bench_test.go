package flashmem_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// Benchmarks regenerate every table and figure of the paper's evaluation
// (DESIGN.md's experiment index). Each benchmark reports the paper-relevant
// summary statistic as a custom metric; the rendered tables come from
// cmd/flashbench. A process-wide runner caches per-model runs so repeated
// benchmark iterations measure the (cheap) cached path after the first
// full evaluation — the first iteration carries the real planning cost.

var (
	benchRunner     *experiments.Runner
	benchRunnerOnce sync.Once
)

func runner() *experiments.Runner {
	benchRunnerOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.SolveTimeout = 60 * time.Millisecond
		cfg.MaxBranches = 4000
		benchRunner = experiments.NewRunner(cfg)
	})
	return benchRunner
}

func BenchmarkTable1Motivation(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Peak-to-average ratio of the first row: the preloading
			// memory spike Table 1 motivates streaming with.
			b.ReportMetric(rows[0].PeakMB/rows[0].AvgMB, "peak/avg")
		}
	}
}

func BenchmarkTable4Solver(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows := r.Table4()
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SolveS, "llama70b-solve-s")
		}
	}
}

// BenchmarkTable4SolverParallel reruns Table 4 with the LC-OPG speculative
// window pipeline at GOMAXPROCS inside each model cell (cells themselves
// already fan out on the sweep pool). Plans are byte-identical to
// BenchmarkTable4Solver's — the delta is wall-clock plus the speculation
// counters. A fresh runner keeps the shared benchmark runner's
// configuration untouched.
func BenchmarkTable4SolverParallel(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SolveTimeout = 60 * time.Millisecond
	cfg.MaxBranches = 4000
	cfg.OPGParallelism = runtime.GOMAXPROCS(0)
	r := experiments.NewRunner(cfg)
	for i := 0; i < b.N; i++ {
		rows := r.Table4()
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].SolveS, "llama70b-solve-s")
			var spec, rec int
			for _, row := range rows {
				spec += row.Spec
				rec += row.Recommit
			}
			b.ReportMetric(float64(spec), "spec-windows")
			b.ReportMetric(float64(rec), "recommits")
		}
	}
}

func BenchmarkTable6Models(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows := r.Table6()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable7Latency(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := r.Table7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Geomeans["SmartMem"], "speedup-vs-smartmem")
			b.ReportMetric(res.Geomeans["ExecuTorch"], "speedup-vs-etorch")
		}
	}
}

func BenchmarkTable8Memory(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := r.Table8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Geomeans["SmartMem"], "memred-vs-smartmem")
		}
	}
}

func BenchmarkTable9Energy(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var ours, smem float64
			for _, row := range rows {
				switch row.Framework {
				case "FlashMem":
					ours = row.DeepViT.EnergyJ
				case "SmartMem":
					smem = row.DeepViT.EnergyJ
				}
			}
			if ours > 0 {
				b.ReportMetric(1-ours/smem, "deepvit-energy-saving")
			}
		}
	}
}

func BenchmarkFigure2Overlap(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		pts := r.Figure2()
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure6MultiModel(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6(10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MNN.Peak)/float64(res.FlashMem.Peak), "peak-mem-ratio")
		}
	}
}

func BenchmarkFigure7Breakdown(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].Speedup[2], "vit-full-speedup")
		}
	}
}

func BenchmarkFigure8Tradeoff(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		curves, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) == 0 {
			b.Fatal("no curves")
		}
	}
}

func BenchmarkFigure9NaiveOverlap(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for _, row := range rows {
				if row.SpeedupAlwaysNext > worst {
					worst = row.SpeedupAlwaysNext
				}
			}
			b.ReportMetric(worst, "max-speedup-vs-always-next")
		}
	}
}

func BenchmarkFigure10Portability(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			enabled := 0
			for _, row := range rows {
				if row.SmartMemOOM && !row.FlashMemOOM {
					enabled++
				}
			}
			b.ReportMetric(float64(enabled), "models-enabled-by-streaming")
		}
	}
}

func BenchmarkAblationChunkSize(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationChunkSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationWindow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFallback(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFallback(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTextureCache(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		rows := r.AblationTextureCache()
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].Speedup, "resnet-texture-speedup")
		}
	}
}
