// Kernelgen: show the §4.4 kernel rewriting — the branch-free pipelined
// kernels FlashMem instantiates from templates, embedding weight-streaming
// loads into the computation of layers the overlap plan selected.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rt := flashmem.New(flashmem.OnePlus12())
	m, err := rt.Load("GPTN-S")
	if err != nil {
		log.Fatal(err)
	}

	kernels, err := m.Kernels(-1)
	if err != nil {
		log.Fatal(err)
	}

	pipelined, naive := 0, 0
	var firstPipelined *flashmem.KernelSource
	for i := range kernels {
		if kernels[i].Pipelined {
			pipelined++
			if firstPipelined == nil {
				firstPipelined = &kernels[i]
			}
		} else {
			naive++
		}
	}
	fmt.Printf("GPTN-S: %d kernels generated — %d pipelined (carry streamed weights), %d plain\n\n",
		len(kernels), pipelined, naive)

	if firstPipelined != nil {
		fmt.Println("First pipelined kernel (uniform load–compute schedule, no branches):")
		fmt.Println(firstPipelined.Source)
	}
}
