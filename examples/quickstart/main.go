// Quickstart: plan and run one model under FlashMem on the OnePlus 12 and
// compare against a preloading framework.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rt := flashmem.New(flashmem.OnePlus12())

	model, err := rt.Load("ViT")
	if err != nil {
		log.Fatal(err)
	}

	plan := model.Plan()
	fmt.Printf("ViT plan: %d lowered layers, %d weight tensors\n", plan.Layers, plan.Weights)
	fmt.Printf("  streamed during inference: %.0f%% of weight bytes\n", plan.OverlapFraction*100)
	fmt.Printf("  preload set |W|:           %.1f MB\n", plan.PreloadMB)
	fmt.Printf("  solver:                    %s over %d windows\n\n", plan.SolverStatus, plan.SolverWindows)

	ours := model.Run()
	fmt.Printf("FlashMem : %7.1f ms integrated, %6.1f MB avg memory, %.2f J\n",
		ours.IntegratedMS, ours.AvgMemMB, ours.EnergyJ)

	for _, fw := range []string{"MNN", "SmartMem"} {
		base, err := rt.RunBaseline(fw, "ViT")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: %7.1f ms integrated, %6.1f MB avg memory, %.2f J  (%.1fx slower, %.1fx more memory)\n",
			fw, base.IntegratedMS, base.AvgMemMB, base.EnergyJ,
			base.IntegratedMS/ours.IntegratedMS, base.AvgMemMB/ours.AvgMemMB)
	}
}
