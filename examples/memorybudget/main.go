// Memorybudget: the Figure 8 trade-off — sweep the in-flight memory budget
// M_peak on one model and watch average memory trade against integrated and
// execution latency. Small budgets force preloading (fast execution, slow
// cold start, high memory); large budgets stream almost everything.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/units"
)

func main() {
	const model = "GPTN-1.3B"
	fmt.Printf("M_peak sweep on %s (OnePlus 12)\n\n", model)
	fmt.Printf("%10s %10s %12s %14s %10s\n", "M_peak", "preload", "avg memory", "integrated", "exec")

	for _, mpeakMB := range []int64{16, 64, 192, 512, 1024} {
		rt := flashmem.New(flashmem.OnePlus12(),
			flashmem.WithMPeak(units.Bytes(mpeakMB)*units.MB))
		m, err := rt.Load(model)
		if err != nil {
			log.Fatal(err)
		}
		plan := m.Plan()
		res := m.Run()
		fmt.Printf("%8d MB %9.0f%% %9.0f MB %11.0f ms %7.0f ms\n",
			mpeakMB, (1-plan.OverlapFraction)*100, res.AvgMemMB, res.IntegratedMS, res.ExecMS)
	}

	fmt.Println("\nLarger budgets stream more (less preload) and cut cold-start")
	fmt.Println("latency; the execution phase pays only the bounded overlap cost.")
}
