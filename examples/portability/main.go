// Portability: the Figure 10 experiment — the same models across four
// devices with very different GPU, memory, and storage budgets. SmartMem's
// preloading OOMs GPT-Neo-1.3B on the 6 GB Xiaomi Mi 6 and the 8 GB Pixel
// 8; FlashMem's streaming runs it everywhere.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	models := []string{"ViT", "SD-UNet", "GPTN-1.3B"}

	for _, dev := range flashmem.Devices() {
		fmt.Printf("%s (%s, %v RAM)\n", dev.Name, dev.GPU, dev.RAM)
		rt := flashmem.New(dev)
		for _, abbr := range models {
			m, err := rt.Load(abbr)
			if err != nil {
				log.Fatal(err)
			}
			ours := m.Run()
			if ours.OOM {
				fmt.Printf("  %-10s FlashMem: OOM\n", abbr)
				continue
			}

			line := fmt.Sprintf("  %-10s FlashMem %8.0f ms / %6.0f MB", abbr, ours.IntegratedMS, ours.AvgMemMB)
			sm, err := rt.RunBaseline("SmartMem", abbr)
			if err != nil {
				line += "   | SmartMem: OOM — FlashMem enables this model"
			} else {
				line += fmt.Sprintf("   | SmartMem %8.0f ms / %6.0f MB (%.1fx, %.1fx)",
					sm.IntegratedMS, sm.AvgMemMB,
					sm.IntegratedMS/ours.IntegratedMS, sm.AvgMemMB/ours.AvgMemMB)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
}
