// Multimodel: the camera-based augmented-reality pipeline from the paper's
// introduction — depth analysis, classification, image generation, and
// speech recognition models activated in FIFO succession (§2.2), where
// preloading frameworks pay a full load + layout transform on every
// activation and FlashMem streams instead.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rt := flashmem.New(flashmem.OnePlus12())
	session := rt.NewSession()

	pipeline := []string{"DepthA-S", "ViT", "SD-UNet", "Whisper-M", "GPTN-1.3B"}
	for _, abbr := range pipeline {
		m, err := rt.Load(abbr)
		if err != nil {
			log.Fatal(err)
		}
		session.Add(m)
		fmt.Printf("planned %-10s (%2.0f%% streamed)\n", abbr, m.Plan().OverlapFraction*100)
	}

	// 3 interleaved rounds of the whole pipeline (Figure 6 runs 10).
	res, err := session.RunFIFO(session.Interleaved(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d requests in %.1f s total\n", len(res.Events), res.TotalMS/1000)
	fmt.Printf("peak memory %.0f MB, average %.0f MB (OOM: %v)\n\n", res.PeakMemMB, res.AvgMemMB, res.OOM)

	perModel := map[string][]float64{}
	for _, e := range res.Events {
		perModel[e.Model] = append(perModel[e.Model], e.LatencyMS)
	}
	fmt.Println("mean request latency per model:")
	for model, lats := range perModel {
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		fmt.Printf("  %-22s %8.1f ms over %d activations\n", model, sum/float64(len(lats)), len(lats))
	}
}
