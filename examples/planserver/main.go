// Planserver: the fleet-backend loop in one process. A Fleet warm-starts a
// plan-cache snapshot (the role the sharded offline sweep plays at scale),
// a plan server boots against it, and concurrent clients for two device
// profiles request plans over HTTP — warm keys serve from the snapshot,
// cold keys collapse onto single solves. The /statsz accounting at the end
// shows exactly who hit, who missed, and how many solves actually ran.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro"
	"repro/internal/opg"
	"repro/internal/server"
)

func main() {
	// 1. Warm a snapshot the way a sharded sweep would: direct solves
	// through the public Fleet API, persisted as a plan-cache file.
	fleet := flashmem.NewFleet(nil, flashmem.WithSolverBudget(5*time.Second, 500))
	warmed := []struct {
		dev  flashmem.Device
		abbr string
	}{
		{flashmem.OnePlus12(), "ViT"},
		{flashmem.XiaomiMi6(), "ViT"},
	}
	for _, c := range warmed {
		if _, err := fleet.Load(c.dev, c.abbr); err != nil {
			log.Fatal(err)
		}
	}
	dir, err := os.MkdirTemp("", "planserver")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "fleet.json")
	if err := fleet.Cache().Save(snap); err != nil {
		log.Fatal(err)
	}

	// 2. Boot the plan server against the snapshot. The solver config must
	// match the one that produced the snapshot — it is part of the plan
	// key — so start from opg.DefaultConfig() and apply the same budget.
	solver := opg.DefaultConfig()
	solver.SolveTimeout = 5 * time.Second
	solver.MaxBranches = 500
	s := server.New(server.Config{Solver: solver})
	defer s.Close()
	if _, err := s.LoadSnapshots(snap); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	fmt.Printf("plan server on %s: %d warm plans from %s\n\n", ts.URL, s.WarmPlans(), filepath.Base(snap))

	// 3. Concurrent clients for two device profiles: ViT is warm on both;
	// ResNet is cold and duplicated, so its requests collapse onto one
	// solve per device.
	type reply struct {
		device, model, source string
		waitMS                float64
	}
	var wg sync.WaitGroup
	replies := make(chan reply, 12)
	for _, devName := range []string{"OnePlus 12", "Xiaomi Mi 6"} {
		for _, model := range []string{"ViT", "ResNet", "ResNet", "ResNet"} {
			wg.Add(1)
			go func(devName, model string) {
				defer wg.Done()
				body := fmt.Sprintf(`{"device":%q,"model":%q}`, devName, model)
				resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					log.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					log.Fatalf("%s/%s: %s: %s", devName, model, resp.Status, b)
				}
				var pr server.PlanResponse
				if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
					log.Fatal(err)
				}
				replies <- reply{devName, model, pr.Source, pr.WaitMS}
			}(devName, model)
		}
	}
	wg.Wait()
	close(replies)
	for r := range replies {
		fmt.Printf("  %-12s %-8s %-10s %8.2f ms\n", r.device, r.model, r.source, r.waitMS)
	}

	// 4. The server-side accounting: warm hits for ViT, one solve plus
	// collapses (or late cache hits) for each device's ResNet storm.
	st := s.Stats()
	fmt.Printf("\n/statsz: %d requests — %d warm, %d cached, %d solved, %d collapsed; %d solver runs\n",
		st.Requests, st.WarmHits, st.Hits, st.Solves, st.Collapsed, st.SolveLatency.Count)
	fmt.Printf("cache: %d entries, %d hits / %d misses; solve p99 %.1f ms, request p99 %.3f ms\n",
		st.Cache.Entries, st.Cache.Hits, st.Cache.Misses,
		st.SolveLatency.P99MS, st.RequestLatency.P99MS)
}
