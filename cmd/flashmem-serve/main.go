// Command flashmem-serve runs the FlashMem plan-serving service: a
// long-running HTTP backend where fleet devices request overlap plans by
// (device profile × model × solver configuration). The plan cache is the
// hot store — warm it at boot from merged sharded-sweep snapshots — and
// cache misses queue onto a bounded solve worker pool with admission
// control (full queue → 429 + Retry-After; slow solve → 504 while the
// solve finishes in the background).
//
// Usage:
//
//	flashmem-serve -addr :8080
//	flashmem-serve -cache merged.json,extra.json   # warm the fleet cache
//	flashmem-serve -workers 4 -queue 128 -timeout 10s
//	flashmem-serve -save plans.json                # persist solves on exit
//
// Endpoints:
//
//	curl -X POST -d '{"device":"OnePlus 12","model":"ViT"}' :8080/plan
//	curl :8080/healthz
//	curl :8080/statsz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/opg"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "flashmem-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flashmem-serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cachePaths := fs.String("cache", "", "comma-separated plan-cache snapshots to warm the fleet cache at boot (merged sharded-sweep output)")
	savePath := fs.String("save", "", "write the plan cache as a snapshot here on shutdown")
	cacheEntries := fs.Int("cache-entries", 8192, "plan cache bound")
	workers := fs.Int("workers", 0, "solve worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "queued-solve bound; beyond it /plan answers 429 + Retry-After")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request solve wait; beyond it /plan answers 504 while the solve continues")
	budget := fs.Duration("budget", opg.DefaultConfig().SolveTimeout, "default per-window CP solve budget (per-request config can override)")
	branches := fs.Int64("branches", opg.DefaultConfig().MaxBranches, "default per-window CP branch budget")
	opgParallel := fs.Int("opg-parallel", 0, "LC-OPG speculative window pipeline workers per solve (0/1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	solver := opg.DefaultConfig()
	solver.SolveTimeout = *budget
	solver.MaxBranches = *branches
	solver.Parallelism = *opgParallel

	s := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		SolveTimeout: *timeout,
		CacheEntries: *cacheEntries,
		Solver:       solver,
	})
	defer s.Close()

	if *cachePaths != "" {
		stats, err := s.LoadSnapshots(strings.Split(*cachePaths, ",")...)
		if err != nil {
			return fmt.Errorf("warm snapshots: %w", err)
		}
		fmt.Fprintf(os.Stderr, "flashmem-serve: warm cache: %d plans loaded from %d files (%d stale or undecodable dropped, %d evicted)\n",
			stats.Loaded, stats.Files, stats.Dropped, stats.Evicted)
		if stats.BadFiles > 0 {
			fmt.Fprintf(os.Stderr, "flashmem-serve: WARNING: %d corrupt snapshot file(s) quarantined to .bad; booting colder than expected\n",
				stats.BadFiles)
		}
	}
	fmt.Fprintf(os.Stderr, "flashmem-serve: solver %s, %d warm plans, listening on %s\n",
		opg.SolverVersion, s.WarmPlans(), *addr)

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		return err // ListenAndServe never returns nil
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	s.Close()

	if *savePath != "" {
		if err := s.SaveSnapshot(*savePath); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "flashmem-serve: saved %d plans to %s\n", s.Cache().Len(), *savePath)
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "flashmem-serve: served %d requests: %d warm, %d cached, %d solved, %d collapsed, %d degraded, %d rejected, %d timed out\n",
		st.Requests, st.WarmHits, st.Hits, st.Solves, st.Collapsed, st.Degraded, st.Rejected, st.TimedOut)
	return nil
}
