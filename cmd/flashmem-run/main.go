// Command flashmem-run executes one model end-to-end under FlashMem or a
// baseline framework and prints latency, memory, and energy.
//
// Usage:
//
//	flashmem-run -model SD-UNet
//	flashmem-run -model ViT -framework SmartMem
//	flashmem-run -model GPTN-1.3B -device "Xiaomi Mi 6"
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	model := flag.String("model", "ViT", "model abbreviation (Table 6)")
	framework := flag.String("framework", "FlashMem", "FlashMem or a baseline (MNN, NCNN, TVM, LiteRT, ExecuTorch, SmartMem)")
	devName := flag.String("device", "OnePlus 12", "device name")
	budget := flag.Duration("budget", 100*time.Millisecond, "per-window CP budget")
	flag.Parse()

	var dev flashmem.Device
	found := false
	for _, d := range flashmem.Devices() {
		if d.Name == *devName {
			dev, found = d, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "flashmem-run: unknown device %q\n", *devName)
		os.Exit(1)
	}

	rt := flashmem.New(dev, flashmem.WithSolverBudget(*budget, 8000))

	var res flashmem.Result
	if *framework == "FlashMem" {
		m, err := rt.Load(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashmem-run:", err)
			os.Exit(1)
		}
		p := m.Plan()
		fmt.Printf("Plan: %d layers, %.0f%% streamed, |W| = %.0f MB, solver %s\n",
			p.Layers, p.OverlapFraction*100, p.PreloadMB, p.SolverStatus)
		res = m.Run()
	} else {
		var err error
		res, err = rt.RunBaseline(*framework, *model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashmem-run:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s on %s (%s)\n", *model, res.Device, *framework)
	fmt.Printf("  integrated: %8.1f ms (init %.1f + exec %.1f)\n", res.IntegratedMS, res.InitMS, res.ExecMS)
	fmt.Printf("  memory:     %8.1f MB avg, %.1f MB peak (OOM: %v)\n", res.AvgMemMB, res.PeakMemMB, res.OOM)
	fmt.Printf("  energy:     %8.2f J at %.1f W average\n", res.EnergyJ, res.AvgPowerW)
	if res.Stalls > 0 {
		fmt.Printf("  stalls:     %d kernels waited on streamed weights\n", res.Stalls)
	}
}
