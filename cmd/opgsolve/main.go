// Command opgsolve runs the LC-OPG solver on one model and prints the plan
// statistics and a Table 4-style runtime breakdown.
//
// Usage:
//
//	opgsolve -model GPTN-1.3B
//	opgsolve -model Llama2-70B -timeout 150s -mpeak 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/opg"
	"repro/internal/profiler"
	"repro/internal/units"
)

func main() {
	model := flag.String("model", "GPTN-S", "model abbreviation (Table 6 or Table 4 set)")
	timeout := flag.Duration("timeout", 250*time.Millisecond, "per-window CP time budget")
	branches := flag.Int64("branches", 20000, "per-window CP branch budget")
	mpeakMB := flag.Int64("mpeak", 500, "M_peak in MB (0 = adaptive only)")
	chunkMB := flag.Int64("chunk", 1, "chunk size S in MB")
	lambda := flag.Float64("lambda", 0.9, "objective weight λ")
	parallel := flag.Int("parallel", 0, "speculative window pipeline workers (0/1 = sequential)")
	learn := flag.String("learn", "cdcl", "CP learning engine: cdcl, restart (legacy restart-scoped), or off")
	warm := flag.Bool("warm-recommit", false, "seed failed-speculation re-solves with learned nogoods (plan may differ from sequential)")
	flag.Parse()

	switch *learn {
	case "cdcl", "restart", "off":
	default:
		fmt.Fprintf(os.Stderr, "opgsolve: unknown -learn mode %q (want cdcl, restart, or off)\n", *learn)
		os.Exit(1)
	}

	spec, ok := models.ByAbbr(*model)
	if !ok {
		for _, s := range models.SolverOnly() {
			if s.Abbr == *model {
				spec, ok = s, true
				break
			}
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "opgsolve: unknown model %q\n", *model)
		os.Exit(1)
	}

	g := spec.Build()
	cfg := opg.DefaultConfig()
	cfg.SolveTimeout = *timeout
	cfg.MaxBranches = *branches
	cfg.MPeak = units.Bytes(*mpeakMB) * units.MB
	cfg.ChunkSize = units.Bytes(*chunkMB) * units.MB
	cfg.Lambda = *lambda
	cfg.Parallelism = *parallel
	cfg.LearnMode = *learn
	cfg.WarmRecommit = *warm
	cfg = opg.AdaptMPeak(cfg, g)

	caps := profiler.AnalyticCapacityFunc(device.OnePlus12())
	plan := opg.Solve(g, caps, cfg)
	st := plan.Stats

	fmt.Printf("Model:        %s (%d layers, %d weights, %v)\n",
		spec.Name, g.Len(), len(plan.Weights), g.TotalWeightBytes())
	fmt.Printf("M_peak:       %v   chunk: %v   lambda: %.2f\n", cfg.MPeak, cfg.ChunkSize, cfg.Lambda)
	fmt.Printf("Process nodes: %8.3f s\n", st.ProcessTime.Seconds())
	fmt.Printf("Build model:   %8.3f s\n", st.BuildTime.Seconds())
	fmt.Printf("Solve model:   %8.3f s\n", st.SolveTime.Seconds())
	fmt.Printf("Solver status: %s (%d windows, %d branches, %dk wakes, %dk trail ops)\n",
		st.Status, st.Windows, st.Branches, st.Wakes/1000, st.TrailOps/1000)
	fmt.Printf("Learning:      %s: %d nogoods, %d restarts\n", *learn, st.Nogoods, st.Restarts)
	fmt.Printf("Conflicts:     %d analyzed, %d backjumps, %d lits minimized\n",
		st.Conflicts, st.Backjumps, st.MinimizedLits)
	if cfg.Parallelism > 1 {
		fmt.Printf("Pipeline:      %d speculative, %d recommitted of %d windows, %d nogoods imported\n",
			st.Speculative, st.Recommitted, st.Windows, st.ImportedNogoods)
	}
	fmt.Printf("Fallbacks:     soft=%d preload=%d greedy=%d\n",
		st.Fallbacks.SoftThreshold, st.Fallbacks.IncrementalPreload, st.Fallbacks.Greedy)
	fmt.Printf("Preload |W|:   %v (%d%% streamed)\n",
		plan.PreloadBytes(), int(plan.OverlapFraction()*100))
	fmt.Printf("Max in-flight: %v\n", plan.MaxInflightBytes(g.Len()))

	if err := plan.Validate(g, caps, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "opgsolve: plan INVALID: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Plan validated: C0-C3 hold.")
}
