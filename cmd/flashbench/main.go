// Command flashbench regenerates the paper's tables and figures on the
// simulated device. Experiments fan out over a bounded worker pool, an
// optional plan-cache snapshot warm-starts the solver across invocations,
// and the experiment matrix can be partitioned across processes with
// -shard, then joined back with the merge subcommand.
//
// Usage:
//
//	flashbench -exp all                 # everything, in parallel
//	flashbench -exp table7,table8      # specific experiments
//	flashbench -exp fig6 -iters 10     # the multi-model trace
//	flashbench -models ViT,ResNet      # restrict the model set
//	flashbench -budget 500ms           # per-window CP budget
//	flashbench -jobs 4 -workers 2      # 4 experiments × 2 cells each
//	flashbench -cache plans.json       # persist solved plans across runs
//	flashbench -trace-gen churn.json -trace-seed 7   # seeded device-churn trace
//	flashbench -trace churn.json       # replay it through the resilience engine
//
// Sharded runs partition every experiment's cell matrix across processes;
// each shard writes machine-readable partial results (and, with -cache,
// its own plan-cache snapshot), and merge joins them into output identical
// to a single-process run:
//
//	flashbench -shard 0/3 -partial partial-0.json -cache cache-0.json
//	flashbench -shard 1/3 -partial partial-1.json -cache cache-1.json
//	flashbench -shard 2/3 -partial partial-2.json -cache cache-2.json
//	flashbench merge -caches cache-0.json,cache-1.json,cache-2.json \
//	    -cache-out merged.json partial-0.json partial-1.json partial-2.json
//
// Coordinated runs replace the static partition with a coordinator that
// deals cost-sized cell batches to pulling workers (work stealing and
// straggler re-dealing included) and prints the merged tables itself:
//
//	flashbench -coordinator 127.0.0.1:9355 -seed-costs nightly.json \
//	    -cache merged.json -stats-out coord-stats.json
//	flashbench -worker http://127.0.0.1:9355   # × N, any machines
//
// Workers take the experiment list from the coordinator; every other
// result-affecting flag (-models, -budget, -branches, -iters, -learn) must
// match the coordinator's, which is enforced by a configuration fingerprint.
//
// Experiment ids: table1 table4 table6 table7 table8 table9 fig2 fig6 fig7
// fig8 fig9 fig10 warmstart abl-chunk abl-window abl-fallback abl-cache
// abl-capacity.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/sweep"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "merge" {
		if err := runMerge(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench merge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runBench(args); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("flashbench", flag.ExitOnError)
	exp := fs.String("exp", "all", "comma-separated experiment ids (or 'all')")
	modelsFlag := fs.String("models", "", "comma-separated Table 6 abbreviations (default: all 11)")
	budget := fs.Duration("budget", 100*time.Millisecond, "per-window CP solve budget")
	branches := fs.Int64("branches", 8000, "per-window CP branch budget")
	opgParallel := fs.Int("opg-parallel", 0, "LC-OPG speculative window pipeline workers (0/1 = sequential); plans are byte-identical at any setting")
	learn := fs.String("learn", "cdcl", "CP learning engine: cdcl, restart (legacy restart-scoped), or off; result-affecting, so it is part of the run fingerprint")
	iters := fs.Int("iters", 10, "multi-model iterations for fig6")
	jobs := fs.Int("jobs", 1, "experiments run concurrently; >1 multiplies with -workers and oversubscribes the CPU, which can starve wall-clock CP budgets and shift solver fallback rates")
	workers := fs.Int("workers", 0, "sweep cells per experiment run concurrently (0 = GOMAXPROCS)")
	cachePath := fs.String("cache", "", "plan-cache snapshot: loaded at start, saved at exit")
	shardFlag := fs.String("shard", "", "run only shard i/N of every experiment's cell matrix (e.g. 0/3)")
	partialPath := fs.String("partial", "", "write machine-readable partial results (JSON) here instead of rendering tables")
	coordAddr := fs.String("coordinator", "", "listen address (e.g. 127.0.0.1:9355): serve the experiment matrix as a coordinated sweep to pulling workers, then print the merged tables")
	workerURL := fs.String("worker", "", "coordinator URL (e.g. http://127.0.0.1:9355): pull and run cell batches; the experiment list comes from the coordinator, every other result-affecting flag must match its")
	workerName := fs.String("worker-name", "", "worker identity in coordinator stats (default hostname-pid)")
	seedCosts := fs.String("seed-costs", "", "comma-separated plan-cache snapshots whose recorded solve costs seed coordinator batch sizing")
	coordWorkers := fs.Int("coordinator-workers", 3, "expected worker count — a batch-sizing hint, not a limit")
	leaseTimeout := fs.Duration("lease-timeout", 2*time.Minute, "how long a worker may hold a batch before the coordinator re-deals it")
	statsOut := fs.String("stats-out", "", "write the coordinator's final per-worker batch/steal/retry stats (JSON) here")
	journalPath := fs.String("journal", "", "coordinator lease journal: accepted results are appended here, and a restarted coordinator resumes the sweep from it instead of starting over")
	chaosFlag := fs.Bool("chaos", false, "run the fault-injection soak (coordinator + workers + plan server under a seeded fault schedule) instead of experiments; exits non-zero on any invariant violation")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos fault-schedule seed; the same seed replays the same per-site fault sequence")
	chaosCells := fs.Int("chaos-cells", 0, "chaos sweep cells per group (0 = small CI-sized soak)")
	chaosRequests := fs.Int("chaos-requests", 0, "chaos serving-leg request count (0 = small CI-sized soak)")
	chaosReport := fs.String("chaos-report", "", "write the chaos run's machine-readable report (JSON) here")
	traceFlag := fs.String("trace", "", "replay a device-condition trace file through the resilience engine instead of experiments; exits non-zero on any invariant violation")
	traceGen := fs.String("trace-gen", "", "generate a seeded device-condition trace, write it here, and exit (with -trace: generate then replay)")
	traceSeed := fs.Uint64("trace-seed", 1, "trace generator seed; the same seed and device produce the identical trace")
	traceEvents := fs.Int("trace-events", 0, "trace generator event count (0 = generator default)")
	traceDevice := fs.String("trace-device", "OnePlus 12", "device profile for -trace-gen and -trace replay; replay refuses a trace whose device fingerprint differs")
	traceReport := fs.String("trace-report", "", "write the trace replay's machine-readable report (JSON) here")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosFlag {
		return runChaos(*chaosSeed, *chaosCells, *chaosRequests, *chaosReport)
	}
	if *traceFlag != "" || *traceGen != "" {
		return runTrace(traceOpts{
			replayPath: *traceFlag,
			genPath:    *traceGen,
			seed:       *traceSeed,
			events:     *traceEvents,
			deviceName: *traceDevice,
			reportPath: *traceReport,
		})
	}
	if *coordAddr != "" && *workerURL != "" {
		return fmt.Errorf("-coordinator and -worker are mutually exclusive")
	}
	switch *learn {
	case "cdcl", "restart", "off":
	default:
		return fmt.Errorf("unknown -learn mode %q (want cdcl, restart, or off)", *learn)
	}
	if (*coordAddr != "" || *workerURL != "") && (*shardFlag != "" || *partialPath != "") {
		return fmt.Errorf("coordinated mode replaces -shard/-partial: the coordinator partitions and merges by itself")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	sh := sweep.Full()
	if *shardFlag != "" {
		var err error
		if sh, err = sweep.ParseShard(*shardFlag); err != nil {
			return err
		}
	}
	if !sh.IsFull() && *partialPath == "" {
		return fmt.Errorf("-shard %s needs -partial: a shard's rows only become tables after merge", sh)
	}

	// Bound the cache well above the full evaluation matrix (a few dozen
	// plans) so a merged multi-shard snapshot warm-starts completely; the
	// default 512-entry bound could evict part of a large merge.
	cache := plancache.New(8192)
	if *cachePath != "" {
		stats, err := cache.LoadAll(*cachePath)
		if err != nil {
			return err
		}
		if stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "flashbench: snapshot %s: %d stale or undecodable plans dropped\n",
				*cachePath, stats.Dropped)
		}
		if stats.Evicted > 0 {
			fmt.Fprintf(os.Stderr, "flashbench: snapshot %s exceeds the cache bound: %d plans evicted; warm start incomplete\n",
				*cachePath, stats.Evicted)
		}
	}

	cfg := experiments.DefaultConfig()
	cfg.SolveTimeout = *budget
	cfg.MaxBranches = *branches
	cfg.Iterations = *iters
	cfg.Workers = *workers
	cfg.OPGParallelism = *opgParallel
	cfg.LearnMode = *learn
	cfg.PlanCache = cache
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}
	r := experiments.NewRunner(cfg)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.AllIDs()
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}

	if *coordAddr != "" {
		fp := fingerprint(ids, *modelsFlag, *budget, *branches, *iters, *learn)
		return runCoordinator(r, ids, fp, coordinatorOpts{
			addr:         *coordAddr,
			seedCosts:    *seedCosts,
			workers:      *coordWorkers,
			leaseTimeout: *leaseTimeout,
			statsOut:     *statsOut,
			cachePath:    *cachePath,
			journal:      *journalPath,
		})
	}
	if *workerURL != "" {
		return runWorkerMode(r, cache, workerOpts{
			coordinator: *workerURL,
			name:        *workerName,
			cachePath:   *cachePath,
			modelsFlag:  *modelsFlag,
			budget:      *budget,
			branches:    *branches,
			iters:       *iters,
			learn:       *learn,
		})
	}

	var runErr error
	if *partialPath != "" {
		// Shard mode: emit machine-readable rows for the merge step.
		fp := fingerprint(ids, *modelsFlag, *budget, *branches, *iters, *learn)
		p, err := experiments.RunPartial(r, ids, sh, *jobs, fp)
		if err == nil {
			err = experiments.WritePartial(*partialPath, p)
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "flashbench: shard %s: wrote %d experiments to %s\n",
				sh, len(p.Experiments), *partialPath)
		}
		runErr = err
	} else {
		// Experiments run concurrently but print in the requested order. On
		// failure the completed experiments are still printed and the cache
		// still saved — a multi-minute run's work is not discarded.
		outs, err := sweep.Map(context.Background(), *jobs, ids, func(_ context.Context, _ int, id string) (string, error) {
			d, ok := experiments.DriverByID(id)
			if !ok {
				return "", fmt.Errorf("unknown experiment id %q", id)
			}
			out, err := d.Output(r)
			if err != nil {
				return "", fmt.Errorf("%s: %w", id, err)
			}
			return out, nil
		})
		for _, out := range outs {
			if out != "" {
				fmt.Println(out)
			}
		}
		runErr = err
	}

	if *cachePath != "" {
		if saveErr := cache.Save(*cachePath); saveErr != nil {
			return saveErr
		}
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "flashbench: plan cache %d entries, %d hits / %d misses (%.0f%% hit rate)\n",
			s.Entries, s.Hits, s.Misses, s.HitRate()*100)
	}
	return runErr
}

// fingerprint summarizes the result-affecting configuration so merge can
// refuse to join partials from diverging runs — including shards produced
// by binaries with different solver generations. Concurrency knobs
// (-jobs, -workers, -opg-parallel) and cache paths are excluded: they
// change scheduling, not results (the speculative window pipeline commits
// byte-identical plans at any worker count). -learn IS included: the
// learning engine changes budget-bound search trajectories and hence plans.
func fingerprint(ids []string, models string, budget time.Duration, branches int64, iters int, learn string) string {
	return fmt.Sprintf("solver=%s exp=%s models=%s budget=%s branches=%d iters=%d learn=%s",
		opg.SolverVersion, strings.Join(ids, ","), models, budget, branches, iters, learn)
}

// coordinatorOpts carries the -coordinator mode's flag values.
type coordinatorOpts struct {
	addr         string
	seedCosts    string
	workers      int
	leaseTimeout time.Duration
	statsOut     string
	cachePath    string
	journal      string
}

// runCoordinator serves the experiment matrix as a coordinated sweep:
// cost-sized batches dealt to pulling workers, expired leases re-dealt,
// rows assembled and rendered through the same merge validation the
// partial-file path uses. With -cache, the workers' pushed plan-cache
// snapshots are merged there; with -stats-out, the per-worker accounting
// is written as JSON.
func runCoordinator(r *experiments.Runner, ids []string, fp string, o coordinatorOpts) error {
	var costs map[string]time.Duration
	if o.seedCosts != "" {
		var err error
		costs, err = plancache.ModelCosts(strings.Split(o.seedCosts, ",")...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flashbench: coordinator: solve-cost estimates for %d models from %s\n",
			len(costs), o.seedCosts)
	}
	grid, err := experiments.CoordinatorGrid(r, ids, fp, costs)
	if err != nil {
		return err
	}
	coord, err := sweep.NewCoordinator(sweep.CoordinatorConfig{
		Grid:         grid,
		Workers:      o.workers,
		LeaseTimeout: o.leaseTimeout,
		Journal:      o.journal,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	if resumed := coord.Stats().ResumedBatches; resumed > 0 {
		fmt.Fprintf(os.Stderr, "flashbench: coordinator: resumed %d completed batches from journal %s\n",
			resumed, o.journal)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "flashbench: coordinator: serving %d cells in %d groups at http://%s (fingerprint %q)\n",
		grid.Cells(), len(grid.Groups), ln.Addr(), fp)

	res, waitErr := coord.Wait(context.Background())
	if o.statsOut != "" {
		if err := writeStatsFile(o.statsOut, coord.Stats()); err != nil {
			if waitErr == nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "flashbench: coordinator: %v\n", err)
		}
	}
	if waitErr != nil {
		return waitErr
	}

	outs, err := experiments.CoordinatedOutputs(grid, res.Rows)
	if err != nil {
		return err
	}
	for _, out := range outs {
		if out.Text != "" {
			fmt.Println(out.Text)
		}
	}
	if o.cachePath != "" {
		// The merge is the last durable act of a sweep that may have taken
		// hours; a transient write failure (filesystem pressure, injected
		// fault) should not discard it. Deterministic failures — a conflict
		// or corrupt worker snapshot — just exhaust the retries quickly.
		retry := backoff.Policy{}
		var mergeErr error
		for attempt := 0; attempt < 3; attempt++ {
			if mergeErr = mergeWorkerSnapshots(o.cachePath, res.Snapshots); mergeErr == nil {
				break
			}
			fmt.Fprintf(os.Stderr, "flashbench: coordinator: snapshot merge attempt %d: %v\n", attempt+1, mergeErr)
			if err := retry.Sleep(context.Background(), attempt); err != nil {
				break
			}
		}
		if mergeErr != nil {
			return mergeErr
		}
	}
	s := res.Stats
	fmt.Fprintf(os.Stderr, "flashbench: coordinator: %d batches over %d workers, %d steals, %d retries, %d stale results\n",
		s.Batches, len(s.Workers), s.Steals, s.Retries, s.StaleResults)
	// Trailing workers may still be polling for their done signal; give
	// them a beat to hear it before the listener dies with the process.
	time.Sleep(time.Second)
	return nil
}

// runChaos executes the fault-injection soak and reports its verdict: exit
// zero only when every invariant held. Scale comes from -chaos-cells and
// -chaos-requests (zero selects the small CI-sized run); -chaos-seed picks
// the fault schedule, and a failing seed reruns the identical schedule.
func runChaos(seed int64, cells, requests int, reportPath string) error {
	dir, err := os.MkdirTemp("", "flashbench-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := chaos.Run(chaos.Config{
		Seed:     seed,
		Cells:    cells,
		Requests: requests,
		Dir:      dir,
		Log:      os.Stderr,
	})
	if rep != nil && reportPath != "" {
		data, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(reportPath, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "flashbench: chaos report: %v\n", jerr)
		}
	}
	if err != nil {
		return fmt.Errorf("chaos harness: %w", err)
	}
	if n := len(rep.Violations); n > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "flashbench: chaos: INVARIANT VIOLATED: %s\n", v)
		}
		return fmt.Errorf("chaos: %d invariant violation(s) under seed %d — rerun with -chaos-seed %d to replay the identical fault schedule", n, seed, seed)
	}
	fmt.Fprintf(os.Stderr, "flashbench: chaos: seed %d clean — %d faults fired, %d/%d requests served (%d degraded), %d batches resumed from journal\n",
		seed, len(rep.Events), rep.ServedOK, rep.Requests, rep.Degraded, rep.Sweep.ResumedBatches)
	return nil
}

// writeStatsFile saves the coordinator accounting — CI archives this next
// to the nightly BENCH files.
func writeStatsFile(path string, stats sweep.CoordinatorStats) error {
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return fmt.Errorf("flashbench: encode stats: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("flashbench: write stats: %w", err)
	}
	return nil
}

// mergeWorkerSnapshots merges the plan-cache snapshots workers attached to
// their results into one file, keeping any plans already at path.
func mergeWorkerSnapshots(path string, snaps map[string][]byte) error {
	if len(snaps) == 0 {
		return fmt.Errorf("flashbench: coordinator: no worker snapshots to merge into %s", path)
	}
	dir, err := os.MkdirTemp("", "flashbench-worker-snaps-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var paths []string
	if _, err := os.Stat(path); err == nil {
		paths = append(paths, path)
	}
	i := 0
	for _, snap := range snaps {
		p := filepath.Join(dir, fmt.Sprintf("worker-%d.json", i))
		i++
		if err := os.WriteFile(p, snap, 0o644); err != nil {
			return err
		}
		paths = append(paths, p)
	}
	stats, err := plancache.MergeSnapshotFiles(path, paths...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flashbench: merged %d worker snapshots into %s: %d plans (%d deduplicated, %d dropped)\n",
		len(snaps), path, stats.Entries, stats.Replaced, stats.Dropped)
	return nil
}

// workerOpts carries the -worker mode's flag values.
type workerOpts struct {
	coordinator string
	name        string
	cachePath   string
	modelsFlag  string
	budget      time.Duration
	branches    int64
	iters       int
	learn       string
}

// runWorkerMode pulls and executes cell batches from a coordinator. The
// experiment list comes from the coordinator's grid; the worker recomputes
// the configuration fingerprint from its own flags over that list, so any
// result-affecting divergence is refused at the first lease.
func runWorkerMode(r *experiments.Runner, cache *plancache.Cache, o workerOpts) error {
	ctx := context.Background()
	grid, err := sweep.FetchGrid(ctx, nil, o.coordinator, backoff.Policy{})
	if err != nil {
		return err
	}
	ids := make([]string, len(grid.Groups))
	for i, g := range grid.Groups {
		ids[i] = g.ID
	}
	fp := fingerprint(ids, o.modelsFlag, o.budget, o.branches, o.iters, o.learn)
	name := o.name
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "flashbench: worker %s: pulling %d cells in %d groups from %s\n",
		name, grid.Cells(), len(grid.Groups), o.coordinator)
	stats, err := sweep.RunWorker(ctx, sweep.WorkerConfig{
		Coordinator: o.coordinator,
		Name:        name,
		Fingerprint: fp,
		Exec:        experiments.WorkerExec(r),
		Snapshot:    cache.Snapshot,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flashbench: worker %s: %d batches (%d cells) accepted, %d stale, %d local errors\n",
		name, stats.Batches, stats.Cells, stats.Stale, stats.Errors)
	if o.cachePath != "" {
		if err := cache.Save(o.cachePath); err != nil {
			return err
		}
	}
	return nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("flashbench merge", flag.ExitOnError)
	caches := fs.String("caches", "", "comma-separated shard plan-cache snapshots to merge")
	cacheOut := fs.String("cache-out", "", "write the merged plan-cache snapshot here")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: flashbench merge [-caches a.json,b.json -cache-out merged.json] [partial.json ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	partials := fs.Args()
	if len(partials) == 0 && *caches == "" {
		return fmt.Errorf("nothing to merge: give partial files and/or -caches")
	}

	if *caches != "" {
		if *cacheOut == "" {
			return fmt.Errorf("-caches needs -cache-out")
		}
		stats, err := plancache.MergeSnapshotFiles(*cacheOut, strings.Split(*caches, ",")...)
		if err != nil {
			// The merge error names the snapshot files that disagree; add the
			// operator's next move so a failed CI merge is self-explanatory.
			return fmt.Errorf("%w (conflicting snapshots come from diverging runs — re-run the named shard with the shared fingerprint config, or drop its snapshot from -caches)", err)
		}
		fmt.Fprintf(os.Stderr, "flashbench: merged %d snapshots into %s: %d plans (%d deduplicated, %d dropped)\n",
			stats.Files, *cacheOut, stats.Entries, stats.Replaced, stats.Dropped)
	}

	if len(partials) > 0 {
		parts := make([]*experiments.Partial, len(partials))
		for i, path := range partials {
			p, err := experiments.ReadPartial(path)
			if err != nil {
				return err
			}
			parts[i] = p
		}
		outs, err := experiments.MergePartials(parts)
		if err != nil {
			return err
		}
		for _, out := range outs {
			if out.Text != "" {
				fmt.Println(out.Text)
			}
		}
	}
	return nil
}
