// Command flashbench regenerates the paper's tables and figures on the
// simulated device. Experiments fan out over a bounded worker pool, and an
// optional plan-cache snapshot warm-starts the solver across invocations.
//
// Usage:
//
//	flashbench -exp all                 # everything, in parallel
//	flashbench -exp table7,table8      # specific experiments
//	flashbench -exp fig6 -iters 10     # the multi-model trace
//	flashbench -models ViT,ResNet      # restrict the model set
//	flashbench -budget 500ms           # per-window CP budget
//	flashbench -jobs 4 -workers 2      # 4 experiments × 2 cells each
//	flashbench -cache plans.json       # persist solved plans across runs
//
// Experiment ids: table1 table4 table6 table7 table8 table9 fig2 fig6 fig7
// fig8 fig9 fig10 warmstart abl-chunk abl-window abl-fallback abl-cache
// abl-capacity.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/plancache"
	"repro/internal/sweep"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
	modelsFlag := flag.String("models", "", "comma-separated Table 6 abbreviations (default: all 11)")
	budget := flag.Duration("budget", 100*time.Millisecond, "per-window CP solve budget")
	branches := flag.Int64("branches", 8000, "per-window CP branch budget")
	iters := flag.Int("iters", 10, "multi-model iterations for fig6")
	jobs := flag.Int("jobs", 1, "experiments run concurrently; >1 multiplies with -workers and oversubscribes the CPU, which can starve wall-clock CP budgets and shift solver fallback rates")
	workers := flag.Int("workers", 0, "sweep cells per experiment run concurrently (0 = GOMAXPROCS)")
	cachePath := flag.String("cache", "", "plan-cache snapshot: loaded at start, saved at exit")
	flag.Parse()

	cache := plancache.New(0)
	if *cachePath != "" {
		if err := cache.Load(*cachePath); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := experiments.DefaultConfig()
	cfg.SolveTimeout = *budget
	cfg.MaxBranches = *branches
	cfg.Workers = *workers
	cfg.PlanCache = cache
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}
	r := experiments.NewRunner(cfg)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table4", "table6", "table7", "table8", "table9",
			"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "warmstart",
			"abl-chunk", "abl-window", "abl-fallback", "abl-cache", "abl-capacity"}
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}

	// Experiments run concurrently but print in the requested order. On
	// failure the completed experiments are still printed and the cache
	// still saved — a multi-minute run's work is not discarded.
	outs, err := sweep.Map(context.Background(), *jobs, ids, func(_ context.Context, _ int, id string) (string, error) {
		out, err := run(r, id, *iters)
		if err != nil {
			return "", fmt.Errorf("%s: %w", id, err)
		}
		return out, nil
	})
	for _, out := range outs {
		if out != "" {
			fmt.Println(out)
		}
	}

	if *cachePath != "" {
		if saveErr := cache.Save(*cachePath); saveErr != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %v\n", saveErr)
			os.Exit(1)
		}
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "flashbench: plan cache %d entries, %d hits / %d misses (%.0f%% hit rate)\n",
			s.Entries, s.Hits, s.Misses, s.HitRate()*100)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

func run(r *experiments.Runner, id string, iters int) (string, error) {
	switch id {
	case "table1":
		rows, err := r.Table1()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable1(rows), nil
	case "table4":
		return experiments.RenderTable4(r.Table4()), nil
	case "table6":
		return experiments.RenderTable6(r.Table6()), nil
	case "table7":
		res, err := r.Table7()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable7(res), nil
	case "table8":
		res, err := r.Table8()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable8(res), nil
	case "table9":
		rows, err := r.Table9()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable9(rows), nil
	case "fig2":
		return experiments.RenderFigure2(r.Figure2()), nil
	case "fig6":
		res, err := r.Figure6(iters)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure6(res), nil
	case "fig7":
		rows, err := r.Figure7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure7(rows), nil
	case "fig8":
		curves, err := r.Figure8()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure8(curves), nil
	case "fig9":
		rows, err := r.Figure9()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure9(rows), nil
	case "fig10":
		rows, err := r.Figure10()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure10(rows), nil
	case "warmstart":
		rows, err := r.WarmStart()
		if err != nil {
			return "", err
		}
		return experiments.RenderWarmStart(rows), nil
	case "abl-chunk":
		rows, err := r.AblationChunkSize()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: chunk size S (ViT)", rows), nil
	case "abl-window":
		rows, err := r.AblationWindow()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: rolling-window span (ViT)", rows), nil
	case "abl-fallback":
		rows, err := r.AblationFallback()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: solver fallback modes (ViT)", rows), nil
	case "abl-cache":
		return experiments.RenderAblationTextureCache(r.AblationTextureCache()), nil
	case "abl-capacity":
		rows, err := r.AblationCapacitySource()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: capacity source (ViT)", rows), nil
	default:
		return "", fmt.Errorf("unknown experiment id %q", id)
	}
}
