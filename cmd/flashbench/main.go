// Command flashbench regenerates the paper's tables and figures on the
// simulated device.
//
// Usage:
//
//	flashbench -exp all                 # everything (several minutes)
//	flashbench -exp table7,table8      # specific experiments
//	flashbench -exp fig6 -iters 10     # the multi-model trace
//	flashbench -models ViT,ResNet      # restrict the model set
//	flashbench -budget 500ms           # per-window CP budget
//
// Experiment ids: table1 table4 table6 table7 table8 table9 fig2 fig6 fig7
// fig8 fig9 fig10 abl-chunk abl-window abl-fallback abl-cache abl-capacity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
	modelsFlag := flag.String("models", "", "comma-separated Table 6 abbreviations (default: all 11)")
	budget := flag.Duration("budget", 100*time.Millisecond, "per-window CP solve budget")
	branches := flag.Int64("branches", 8000, "per-window CP branch budget")
	iters := flag.Int("iters", 10, "multi-model iterations for fig6")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SolveTimeout = *budget
	cfg.MaxBranches = *branches
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}
	r := experiments.NewRunner(cfg)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table4", "table6", "table7", "table8", "table9",
			"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "warmstart",
			"abl-chunk", "abl-window", "abl-fallback", "abl-cache", "abl-capacity"}
	}
	for _, id := range ids {
		out, err := run(r, strings.TrimSpace(id), *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

func run(r *experiments.Runner, id string, iters int) (string, error) {
	switch id {
	case "table1":
		rows, err := r.Table1()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable1(rows), nil
	case "table4":
		return experiments.RenderTable4(r.Table4()), nil
	case "table6":
		return experiments.RenderTable6(r.Table6()), nil
	case "table7":
		res, err := r.Table7()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable7(res), nil
	case "table8":
		res, err := r.Table8()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable8(res), nil
	case "table9":
		rows, err := r.Table9()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable9(rows), nil
	case "fig2":
		return experiments.RenderFigure2(r.Figure2()), nil
	case "fig6":
		res, err := r.Figure6(iters)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure6(res), nil
	case "fig7":
		rows, err := r.Figure7()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure7(rows), nil
	case "fig8":
		curves, err := r.Figure8()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure8(curves), nil
	case "fig9":
		rows, err := r.Figure9()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure9(rows), nil
	case "fig10":
		rows, err := r.Figure10()
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure10(rows), nil
	case "warmstart":
		rows, err := r.WarmStart()
		if err != nil {
			return "", err
		}
		return experiments.RenderWarmStart(rows), nil
	case "abl-chunk":
		rows, err := r.AblationChunkSize()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: chunk size S (ViT)", rows), nil
	case "abl-window":
		rows, err := r.AblationWindow()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: rolling-window span (ViT)", rows), nil
	case "abl-fallback":
		rows, err := r.AblationFallback()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: solver fallback modes (ViT)", rows), nil
	case "abl-cache":
		return experiments.RenderAblationTextureCache(r.AblationTextureCache()), nil
	case "abl-capacity":
		rows, err := r.AblationCapacitySource()
		if err != nil {
			return "", err
		}
		return experiments.RenderAblation("Ablation: capacity source (ViT)", rows), nil
	default:
		return "", fmt.Errorf("unknown experiment id %q", id)
	}
}
