// Command flashbench regenerates the paper's tables and figures on the
// simulated device. Experiments fan out over a bounded worker pool, an
// optional plan-cache snapshot warm-starts the solver across invocations,
// and the experiment matrix can be partitioned across processes with
// -shard, then joined back with the merge subcommand.
//
// Usage:
//
//	flashbench -exp all                 # everything, in parallel
//	flashbench -exp table7,table8      # specific experiments
//	flashbench -exp fig6 -iters 10     # the multi-model trace
//	flashbench -models ViT,ResNet      # restrict the model set
//	flashbench -budget 500ms           # per-window CP budget
//	flashbench -jobs 4 -workers 2      # 4 experiments × 2 cells each
//	flashbench -cache plans.json       # persist solved plans across runs
//
// Sharded runs partition every experiment's cell matrix across processes;
// each shard writes machine-readable partial results (and, with -cache,
// its own plan-cache snapshot), and merge joins them into output identical
// to a single-process run:
//
//	flashbench -shard 0/3 -partial partial-0.json -cache cache-0.json
//	flashbench -shard 1/3 -partial partial-1.json -cache cache-1.json
//	flashbench -shard 2/3 -partial partial-2.json -cache cache-2.json
//	flashbench merge -caches cache-0.json,cache-1.json,cache-2.json \
//	    -cache-out merged.json partial-0.json partial-1.json partial-2.json
//
// Experiment ids: table1 table4 table6 table7 table8 table9 fig2 fig6 fig7
// fig8 fig9 fig10 warmstart abl-chunk abl-window abl-fallback abl-cache
// abl-capacity.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/opg"
	"repro/internal/plancache"
	"repro/internal/sweep"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "merge" {
		if err := runMerge(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "flashbench merge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runBench(args); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("flashbench", flag.ExitOnError)
	exp := fs.String("exp", "all", "comma-separated experiment ids (or 'all')")
	modelsFlag := fs.String("models", "", "comma-separated Table 6 abbreviations (default: all 11)")
	budget := fs.Duration("budget", 100*time.Millisecond, "per-window CP solve budget")
	branches := fs.Int64("branches", 8000, "per-window CP branch budget")
	opgParallel := fs.Int("opg-parallel", 0, "LC-OPG speculative window pipeline workers (0/1 = sequential); plans are byte-identical at any setting")
	iters := fs.Int("iters", 10, "multi-model iterations for fig6")
	jobs := fs.Int("jobs", 1, "experiments run concurrently; >1 multiplies with -workers and oversubscribes the CPU, which can starve wall-clock CP budgets and shift solver fallback rates")
	workers := fs.Int("workers", 0, "sweep cells per experiment run concurrently (0 = GOMAXPROCS)")
	cachePath := fs.String("cache", "", "plan-cache snapshot: loaded at start, saved at exit")
	shardFlag := fs.String("shard", "", "run only shard i/N of every experiment's cell matrix (e.g. 0/3)")
	partialPath := fs.String("partial", "", "write machine-readable partial results (JSON) here instead of rendering tables")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	sh := sweep.Full()
	if *shardFlag != "" {
		var err error
		if sh, err = sweep.ParseShard(*shardFlag); err != nil {
			return err
		}
	}
	if !sh.IsFull() && *partialPath == "" {
		return fmt.Errorf("-shard %s needs -partial: a shard's rows only become tables after merge", sh)
	}

	// Bound the cache well above the full evaluation matrix (a few dozen
	// plans) so a merged multi-shard snapshot warm-starts completely; the
	// default 512-entry bound could evict part of a large merge.
	cache := plancache.New(8192)
	if *cachePath != "" {
		stats, err := cache.LoadAll(*cachePath)
		if err != nil {
			return err
		}
		if stats.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "flashbench: snapshot %s: %d stale or undecodable plans dropped\n",
				*cachePath, stats.Dropped)
		}
		if stats.Evicted > 0 {
			fmt.Fprintf(os.Stderr, "flashbench: snapshot %s exceeds the cache bound: %d plans evicted; warm start incomplete\n",
				*cachePath, stats.Evicted)
		}
	}

	cfg := experiments.DefaultConfig()
	cfg.SolveTimeout = *budget
	cfg.MaxBranches = *branches
	cfg.Iterations = *iters
	cfg.Workers = *workers
	cfg.OPGParallelism = *opgParallel
	cfg.PlanCache = cache
	if *modelsFlag != "" {
		cfg.Models = strings.Split(*modelsFlag, ",")
	}
	r := experiments.NewRunner(cfg)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.AllIDs()
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}

	var runErr error
	if *partialPath != "" {
		// Shard mode: emit machine-readable rows for the merge step.
		fp := fingerprint(ids, *modelsFlag, *budget, *branches, *iters)
		p, err := experiments.RunPartial(r, ids, sh, *jobs, fp)
		if err == nil {
			err = experiments.WritePartial(*partialPath, p)
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "flashbench: shard %s: wrote %d experiments to %s\n",
				sh, len(p.Experiments), *partialPath)
		}
		runErr = err
	} else {
		// Experiments run concurrently but print in the requested order. On
		// failure the completed experiments are still printed and the cache
		// still saved — a multi-minute run's work is not discarded.
		outs, err := sweep.Map(context.Background(), *jobs, ids, func(_ context.Context, _ int, id string) (string, error) {
			d, ok := experiments.DriverByID(id)
			if !ok {
				return "", fmt.Errorf("unknown experiment id %q", id)
			}
			out, err := d.Output(r)
			if err != nil {
				return "", fmt.Errorf("%s: %w", id, err)
			}
			return out, nil
		})
		for _, out := range outs {
			if out != "" {
				fmt.Println(out)
			}
		}
		runErr = err
	}

	if *cachePath != "" {
		if saveErr := cache.Save(*cachePath); saveErr != nil {
			return saveErr
		}
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "flashbench: plan cache %d entries, %d hits / %d misses (%.0f%% hit rate)\n",
			s.Entries, s.Hits, s.Misses, s.HitRate()*100)
	}
	return runErr
}

// fingerprint summarizes the result-affecting configuration so merge can
// refuse to join partials from diverging runs — including shards produced
// by binaries with different solver generations. Concurrency knobs
// (-jobs, -workers, -opg-parallel) and cache paths are excluded: they
// change scheduling, not results (the speculative window pipeline commits
// byte-identical plans at any worker count).
func fingerprint(ids []string, models string, budget time.Duration, branches int64, iters int) string {
	return fmt.Sprintf("solver=%s exp=%s models=%s budget=%s branches=%d iters=%d",
		opg.SolverVersion, strings.Join(ids, ","), models, budget, branches, iters)
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("flashbench merge", flag.ExitOnError)
	caches := fs.String("caches", "", "comma-separated shard plan-cache snapshots to merge")
	cacheOut := fs.String("cache-out", "", "write the merged plan-cache snapshot here")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: flashbench merge [-caches a.json,b.json -cache-out merged.json] [partial.json ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	partials := fs.Args()
	if len(partials) == 0 && *caches == "" {
		return fmt.Errorf("nothing to merge: give partial files and/or -caches")
	}

	if *caches != "" {
		if *cacheOut == "" {
			return fmt.Errorf("-caches needs -cache-out")
		}
		stats, err := plancache.MergeSnapshotFiles(*cacheOut, strings.Split(*caches, ",")...)
		if err != nil {
			// The merge error names the snapshot files that disagree; add the
			// operator's next move so a failed CI merge is self-explanatory.
			return fmt.Errorf("%w (conflicting snapshots come from diverging runs — re-run the named shard with the shared fingerprint config, or drop its snapshot from -caches)", err)
		}
		fmt.Fprintf(os.Stderr, "flashbench: merged %d snapshots into %s: %d plans (%d deduplicated, %d dropped)\n",
			stats.Files, *cacheOut, stats.Entries, stats.Replaced, stats.Dropped)
	}

	if len(partials) > 0 {
		parts := make([]*experiments.Partial, len(partials))
		for i, path := range partials {
			p, err := experiments.ReadPartial(path)
			if err != nil {
				return err
			}
			parts[i] = p
		}
		outs, err := experiments.MergePartials(parts)
		if err != nil {
			return err
		}
		for _, out := range outs {
			if out.Text != "" {
				fmt.Println(out.Text)
			}
		}
	}
	return nil
}
