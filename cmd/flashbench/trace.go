package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/replan"
	"repro/internal/trace"
)

// traceOpts carries the -trace/-trace-gen mode's flag values.
type traceOpts struct {
	replayPath string // -trace: replay this trace file
	genPath    string // -trace-gen: generate a trace here
	seed       uint64
	events     int
	deviceName string
	reportPath string // -trace-report: machine-readable replay report
}

// runTrace is the device-churn resilience mode: -trace-gen writes a seeded
// device-condition trace, -trace replays one end to end through the
// resilience engine and reports requests served, SLO misses, re-plans, and
// the repair-vs-cold latency ratio. Replay exits non-zero on any invariant
// violation (a lost request, a served plan invalid for the device state it
// was served under). Both flags together generate then immediately replay.
func runTrace(o traceOpts) error {
	dev, ok := device.ByName(o.deviceName)
	if !ok {
		var names []string
		for _, d := range device.All() {
			names = append(names, d.Name)
		}
		return fmt.Errorf("unknown -trace-device %q (have %s)", o.deviceName, strings.Join(names, ", "))
	}

	if o.genPath != "" {
		tr := trace.Generate(dev, trace.GenOptions{
			Seed:        o.seed,
			Events:      o.events,
			MaxThrottle: power.MaxThrottleLevel,
		})
		if err := tr.WriteFile(o.genPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flashbench: trace: wrote %d events for %q (seed %d, fingerprint %s) to %s\n",
			len(tr.Events), dev.Name, tr.Seed, tr.Fingerprint, o.genPath)
		if o.replayPath == "" {
			return nil
		}
	}

	tr, err := trace.ReadFile(o.replayPath)
	if err != nil {
		return err
	}
	// Replay refuses fingerprint-mismatched traces up front (the error
	// names both fingerprints); surfacing it here keeps the failure ahead
	// of any solving work.
	rep, err := replan.Replay(context.Background(), dev, tr, replan.ReplayOptions{})
	if err != nil {
		return err
	}

	if o.reportPath != "" {
		data, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(o.reportPath, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "flashbench: trace report: %v\n", jerr)
		}
	}

	fmt.Fprintf(os.Stderr, "flashbench: trace: %s: %d events, %d/%d requests served (%d rejected, %d of those shed), %d SLO misses\n",
		o.replayPath, rep.Events, rep.Served, rep.Requests, rep.Rejected, rep.RejectedShed, rep.SLOMisses)
	var rungs []string
	for rung, n := range rep.Rungs {
		rungs = append(rungs, fmt.Sprintf("%s:%d", rung, n))
	}
	sort.Strings(rungs)
	fmt.Fprintf(os.Stderr, "flashbench: trace: %d re-plans on condition events; plan sources %s\n",
		rep.Replans, strings.Join(rungs, " "))
	if rep.RepairVsCold > 0 {
		fmt.Fprintf(os.Stderr, "flashbench: trace: repair %.1fms mean (%.1fms max, %d windows kept / %d re-solved) vs cold %.1fms mean — ratio %.2f\n",
			rep.RepairMeanMS, rep.RepairMaxMS, rep.RepairWindowsKept, rep.RepairWindowsResolved,
			rep.ColdMeanMS, rep.RepairVsCold)
	}

	if n := len(rep.Violations); n > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "flashbench: trace: INVARIANT VIOLATED: %s\n", v)
		}
		return fmt.Errorf("trace replay: %d invariant violation(s) — the trace is deterministic, rerun %s to reproduce", n, o.replayPath)
	}
	fmt.Fprintf(os.Stderr, "flashbench: trace: replay clean — 0 invariant violations\n")
	return nil
}
