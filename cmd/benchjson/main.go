// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// runs (BENCH_solver.json) as a comparable perf trajectory across PRs.
//
//	make bench-solver | go run ./cmd/benchjson > BENCH_solver.json
//
// Standard ns/op, B/op and allocs/op columns become fields; every custom
// b.ReportMetric column (branches, wakes, solve-s, …) lands in Metrics.
//
// The compare subcommand is the solver-perf regression gate: it diffs a
// current run against a stored baseline and fails (exit 1) when any shared
// benchmark regressed past the ns/op ratio threshold:
//
//	go run ./cmd/benchjson compare -max-ratio 2.0 BENCH_solver.json new.json
//
// Benchmarks present on only one side are reported but never fail the
// gate, so adding or retiring benchmarks does not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompare(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson compare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runCompare implements the compare subcommand.
func runCompare(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	maxRatio := fs.Float64("max-ratio", 2.0, "fail when a benchmark slows down past this factor (after -ref normalization)")
	ref := fs.String("ref", "", "reference: ns/op ratios are divided by this benchmark's own ratio, cancelling machine-speed differences between the baseline host and the current runner; the special value 'median' uses the median ratio of all shared non-advisory benchmarks, so no single noisy sample can rescale the verdicts")
	advisory := fs.String("advisory", "", "substring: matching benchmarks are reported but never fail the gate (e.g. 'Parallel' for core-count-dependent results a scalar reference cannot normalize)")
	counter := fs.String("counter", "", "custom metric gated on its raw ratio with no normalization — meant for deterministic machine-independent counters like 'branches', which neither runner speed nor sample noise can shift")
	minNs := fs.Float64("min-ns", 0, "ns/op gating applies only to benchmarks whose baseline is at least this many ns; smaller ones are too noise-prone for a hard wall-clock gate and report advisory only (counter gating still applies)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: benchjson compare [-max-ratio 2.0] [-ref BenchmarkX] baseline.json current.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("want exactly two files, got %d", fs.NArg())
	}
	base, err := readReport(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := readReport(fs.Arg(1))
	if err != nil {
		return err
	}
	regs, lines := compareReports(base, cur, compareOpts{
		maxRatio: *maxRatio, ref: *ref, advisory: *advisory,
		counter: *counter, minNs: *minNs,
	})
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.1fx ns/op: %s",
			len(regs), *maxRatio, strings.Join(regs, ", "))
	}
	return nil
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &rep, nil
}

// compareReports diffs current against baseline by benchmark name. It
// returns the names that regressed past maxRatio and a rendered line per
// benchmark (shared ones with their ratio, one-sided ones annotated).
//
// Baselines typically come from a different machine than the current run,
// where absolute ns/op is not comparable. When refName names a benchmark
// present on both sides, every ratio is divided by the reference's own
// ratio — the machine-speed factor appears in both and cancels, leaving
// the workload's *shape* relative to the reference — and the reference
// itself is exempt from gating (its normalized ratio is 1 by
// construction). Without a usable reference the raw ratio is judged and a
// note says so. Benchmarks whose name contains the non-empty advisory
// substring are reported but never regress the gate: a single-threaded
// reference cancels scalar speed, not core count, so parallel benchmarks
// gated across hosts with different parallelism would flap.
//
// Normalized wall-clock gating has an inherent blind spot — a regression
// that slows every benchmark uniformly looks exactly like a slow runner —
// and sub-millisecond samples are noise-prone. The counter option closes
// the detectable part of that gap: deterministic search counters (e.g.
// 'branches') are machine-independent and sample-noise-free, so their raw
// ratio is gated without any normalization, and minNs keeps the
// wall-clock verdict to benchmarks big enough to measure.
type compareOpts struct {
	maxRatio float64
	ref      string
	advisory string
	counter  string
	minNs    float64
}

func compareReports(base, cur *Report, o compareOpts) (regressed []string, lines []string) {
	maxRatio, refName, advisory := o.maxRatio, o.ref, o.advisory
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	scale := 1.0
	normalized := false
	switch {
	case refName == "median":
		// Median raw ratio across the shared non-advisory benchmarks: a
		// single noisy sample (GC pause, noisy neighbor) cannot rescale the
		// verdicts, and one genuine regression barely moves it.
		var ratios []float64
		for n, b := range baseBy {
			if c, ok := curBy[n]; ok && b.NsPerOp > 0 && c.NsPerOp > 0 &&
				(advisory == "" || !strings.Contains(n, advisory)) {
				ratios = append(ratios, c.NsPerOp/b.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			scale = ratios[len(ratios)/2]
			if len(ratios)%2 == 0 {
				scale = (scale + ratios[len(ratios)/2-1]) / 2
			}
			normalized = true
			lines = append(lines, fmt.Sprintf("normalizing by the median of %d shared benchmarks: runner is %.2fx the baseline host", len(ratios), scale))
		} else {
			lines = append(lines, "no shared benchmarks to take a median over: judging raw ns/op ratios")
		}
	case refName != "":
		rb, rc := baseBy[refName], curBy[refName]
		if rb.NsPerOp > 0 && rc.NsPerOp > 0 {
			scale = rc.NsPerOp / rb.NsPerOp
			normalized = true
			lines = append(lines, fmt.Sprintf("normalizing by %s: runner is %.2fx the baseline host", refName, scale))
		} else {
			lines = append(lines, fmt.Sprintf("reference %s missing on one side: judging raw ns/op ratios", refName))
		}
	}
	names := make([]string, 0, len(baseBy)+len(curBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range curBy {
		if _, ok := baseBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		b, inBase := baseBy[n]
		c, inCur := curBy[n]
		switch {
		case !inCur:
			lines = append(lines, fmt.Sprintf("%-40s baseline-only (retired?)", n))
		case !inBase:
			lines = append(lines, fmt.Sprintf("%-40s new (no baseline)", n))
		case b.NsPerOp <= 0:
			lines = append(lines, fmt.Sprintf("%-40s baseline has no ns/op", n))
		default:
			ratio := c.NsPerOp / b.NsPerOp / scale
			mark := "ok"
			failed := false
			switch {
			case ratio <= maxRatio || (normalized && n == refName):
			case advisory != "" && strings.Contains(n, advisory):
				mark = "slow (advisory)"
			case o.minNs > 0 && b.NsPerOp < o.minNs:
				mark = "slow (below -min-ns, advisory)"
			default:
				mark = "REGRESSED"
				failed = true
			}
			if o.counter != "" && (advisory == "" || !strings.Contains(n, advisory)) {
				if bc, cc := b.Metrics[o.counter], c.Metrics[o.counter]; bc > 0 && cc/bc > maxRatio {
					mark = fmt.Sprintf("REGRESSED (%s %.0f -> %.0f)", o.counter, bc, cc)
					failed = true
				}
			}
			if failed {
				regressed = append(regressed, n)
			}
			lines = append(lines, fmt.Sprintf("%-40s %12.0f -> %12.0f ns/op  %5.2fx  %s",
				n, b.NsPerOp, c.NsPerOp, ratio, mark))
		}
	}
	return regressed, lines
}

// parse scans bench output, collecting environment headers and result
// lines; non-benchmark lines (PASS, ok, test logs) are ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine decodes one result line of the form
//
//	BenchmarkName-8   12   3456 ns/op   7.8 custom-metric   90 B/op   1 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		default:
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// cpuSuffix returns the trailing -N GOMAXPROCS marker of a benchmark name
// (empty if absent), so names compare across machines with different core
// counts.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
