// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// runs (BENCH_solver.json) as a comparable perf trajectory across PRs.
//
//	make bench-solver | go run ./cmd/benchjson > BENCH_solver.json
//
// Standard ns/op, B/op and allocs/op columns become fields; every custom
// b.ReportMetric column (branches, wakes, solve-s, …) lands in Metrics.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans bench output, collecting environment headers and result
// lines; non-benchmark lines (PASS, ok, test logs) are ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine decodes one result line of the form
//
//	BenchmarkName-8   12   3456 ns/op   7.8 custom-metric   90 B/op   1 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		default:
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// cpuSuffix returns the trailing -N GOMAXPROCS marker of a benchmark name
// (empty if absent), so names compare across machines with different core
// counts.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
