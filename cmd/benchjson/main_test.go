package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/cpsat
cpu: Fake CPU @ 2.70GHz
BenchmarkKnapsackWindow-2    2   41599137 ns/op   20000 branches   582520 props   106920 B/op   259 allocs/op
BenchmarkColdSolveLlama70B-2 1  1645096656 ns/op  256137 branches  1.628 solve-s
PASS
ok   repro/internal/cpsat 0.335s
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "Fake CPU @ 2.70GHz" {
		t.Errorf("environment headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkKnapsackWindow" {
		t.Errorf("name = %q (cpu suffix must be stripped)", b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 41599137 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["branches"] != 20000 || b.Metrics["B/op"] != 106920 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if rep.Benchmarks[1].Metrics["solve-s"] != 1.628 {
		t.Errorf("custom metric lost: %v", rep.Benchmarks[1].Metrics)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("Benchmark-nonsense line\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("garbage parsed as %d benchmarks", len(rep.Benchmarks))
	}
}
