package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/cpsat
cpu: Fake CPU @ 2.70GHz
BenchmarkKnapsackWindow-2    2   41599137 ns/op   20000 branches   582520 props   106920 B/op   259 allocs/op
BenchmarkColdSolveLlama70B-2 1  1645096656 ns/op  256137 branches  1.628 solve-s
PASS
ok   repro/internal/cpsat 0.335s
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "Fake CPU @ 2.70GHz" {
		t.Errorf("environment headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkKnapsackWindow" {
		t.Errorf("name = %q (cpu suffix must be stripped)", b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 41599137 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["branches"] != 20000 || b.Metrics["B/op"] != 106920 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if rep.Benchmarks[1].Metrics["solve-s"] != 1.628 {
		t.Errorf("custom metric lost: %v", rep.Benchmarks[1].Metrics)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("Benchmark-nonsense line\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("garbage parsed as %d benchmarks", len(rep.Benchmarks))
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkRetired", NsPerOp: 5},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 150},  // 1.5x: fine
		{Name: "BenchmarkB", NsPerOp: 2500}, // 2.5x: regression
		{Name: "BenchmarkNew", NsPerOp: 7},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "", advisory: ""})
	if len(regs) != 1 || regs[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regs)
	}
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"REGRESSED", "new (no baseline)", "baseline-only"} {
		if !strings.Contains(joined, want) {
			t.Errorf("output missing %q:\n%s", want, joined)
		}
	}

	// One-sided benchmarks never fail the gate.
	regs, _ = compareReports(base, &Report{Benchmarks: []Benchmark{{Name: "BenchmarkNew", NsPerOp: 7}}}, compareOpts{maxRatio: 2.0, ref: "", advisory: ""})
	if len(regs) != 0 {
		t.Fatalf("one-sided compare regressed: %v", regs)
	}
}

func TestCompareReportsAtThreshold(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 100}}}
	cur := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 200}}}
	// Exactly at the ratio is not a regression; just past it is.
	if regs, _ := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "", advisory: ""}); len(regs) != 0 {
		t.Fatalf("2.0x at max-ratio 2.0 must pass, got %v", regs)
	}
	cur.Benchmarks[0].NsPerOp = 201
	if regs, _ := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "", advisory: ""}); len(regs) != 1 {
		t.Fatal("2.01x at max-ratio 2.0 must fail")
	}
}

func TestCompareReportsRefNormalization(t *testing.T) {
	// The current "runner" is uniformly 3x slower than the baseline host:
	// with -ref normalization nothing regresses, and a genuine 3x-on-top
	// algorithmic regression still fails.
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkRef", NsPerOp: 100},
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkBad", NsPerOp: 1000},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkRef", NsPerOp: 300},
		{Name: "BenchmarkA", NsPerOp: 3000},
		{Name: "BenchmarkBad", NsPerOp: 9000},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "BenchmarkRef", advisory: ""})
	if len(regs) != 1 || regs[0] != "BenchmarkBad" {
		t.Fatalf("regressed = %v, want [BenchmarkBad]:\n%s", regs, strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "normalizing by BenchmarkRef") {
		t.Errorf("missing normalization note: %q", lines[0])
	}

	// Without normalization, the slow runner alone fails everything.
	regs, _ = compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "", advisory: ""})
	if len(regs) != 3 {
		t.Fatalf("raw compare on a 3x-slower runner should flag all 3, got %v", regs)
	}

	// A missing reference degrades to raw ratios with a note.
	regs, lines = compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "BenchmarkMissing", advisory: ""})
	if len(regs) != 3 || !strings.Contains(lines[0], "missing on one side") {
		t.Fatalf("missing-ref fallback wrong: regs=%v lines[0]=%q", regs, lines[0])
	}
}

func TestCompareReportsAdvisory(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkAParallel", NsPerOp: 100},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 500},
		{Name: "BenchmarkAParallel", NsPerOp: 500},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "", advisory: "Parallel"})
	if len(regs) != 1 || regs[0] != "BenchmarkA" {
		t.Fatalf("regressed = %v, want only BenchmarkA (Parallel is advisory)", regs)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "slow (advisory)") {
		t.Errorf("advisory slowdown not reported:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareReportsMedianRef(t *testing.T) {
	// Runner uniformly 3x slower; one genuine 4x-on-top regression. The
	// median cancels the machine factor without the outlier dragging it.
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 200},
		{Name: "BenchmarkC", NsPerOp: 300},
		{Name: "BenchmarkBad", NsPerOp: 100},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 300},
		{Name: "BenchmarkB", NsPerOp: 600},
		{Name: "BenchmarkC", NsPerOp: 900},
		{Name: "BenchmarkBad", NsPerOp: 1200},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, ref: "median", advisory: ""})
	if len(regs) != 1 || regs[0] != "BenchmarkBad" {
		t.Fatalf("regressed = %v, want [BenchmarkBad]:\n%s", regs, strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "median of 4 shared benchmarks") {
		t.Errorf("missing median note: %q", lines[0])
	}
}

func TestCompareReportsCounterGate(t *testing.T) {
	// Same machine-speed story as ever, but the deterministic branch
	// counter exploded: the counter gate fails it regardless of wall-clock
	// normalization, and it is immune to a slow runner by construction.
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, Metrics: map[string]float64{"branches": 1000}},
		{Name: "BenchmarkB", NsPerOp: 100, Metrics: map[string]float64{"branches": 1000}},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 110, Metrics: map[string]float64{"branches": 5000}},
		{Name: "BenchmarkB", NsPerOp: 110, Metrics: map[string]float64{"branches": 1001}},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, counter: "branches"})
	if len(regs) != 1 || regs[0] != "BenchmarkA" {
		t.Fatalf("regressed = %v, want [BenchmarkA]:\n%s", regs, strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "branches 1000 -> 5000") {
		t.Errorf("counter detail missing:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareReportsMinNs(t *testing.T) {
	// A 6ms benchmark doubling is sample noise, not a verdict; a 600ms one
	// doubling is a regression.
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkTiny", NsPerOp: 6e6},
		{Name: "BenchmarkBig", NsPerOp: 6e8},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkTiny", NsPerOp: 15e6},
		{Name: "BenchmarkBig", NsPerOp: 15e8},
	}}
	regs, lines := compareReports(base, cur, compareOpts{maxRatio: 2.0, minNs: 5e7})
	if len(regs) != 1 || regs[0] != "BenchmarkBig" {
		t.Fatalf("regressed = %v, want [BenchmarkBig]:\n%s", regs, strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "below -min-ns") {
		t.Errorf("min-ns advisory note missing:\n%s", strings.Join(lines, "\n"))
	}
}
