package flashmem_test

import (
	"testing"
	"time"

	flashmem "repro"
	"repro/internal/units"
)

// TestAllModelsEndToEnd runs every Table 6 model through the full FlashMem
// pipeline on the primary device and checks the paper's global claims:
// everything runs (including GPTN-2.7B, which no baseline can), nothing
// OOMs, and streaming keeps average memory below the model's weight bytes
// plus runtime fixtures.
func TestAllModelsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep in short mode")
	}
	rt := flashmem.New(flashmem.OnePlus12(),
		flashmem.WithSolverBudget(40*time.Millisecond, 2500))
	for _, abbr := range flashmem.Models() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			m, err := rt.Load(abbr)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.OOM {
				t.Fatalf("%s OOMs under FlashMem", abbr)
			}
			if res.IntegratedMS <= 0 || res.Kernels == 0 {
				t.Fatalf("degenerate run: %+v", res)
			}
			plan := m.Plan()
			if plan.OverlapFraction <= 0 {
				t.Errorf("no weights streamed at all")
			}
		})
	}
}

// TestGPTNeo27BOnlyOnFlashMem verifies the §5.2 claim end-to-end: every
// baseline fails on GPTNeo-2.7B (unsupported or OOM) while FlashMem runs it
// within the device budget.
func TestGPTNeo27BOnlyOnFlashMem(t *testing.T) {
	if testing.Short() {
		t.Skip("2.7B build in short mode")
	}
	rt := flashmem.New(flashmem.OnePlus12(),
		flashmem.WithSolverBudget(40*time.Millisecond, 2500))
	for _, fw := range flashmem.Frameworks() {
		if _, err := rt.RunBaseline(fw, "GPTN-2.7B"); err == nil {
			t.Errorf("%s unexpectedly runs GPTN-2.7B", fw)
		}
	}
	m, err := rt.Load("GPTN-2.7B")
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.OOM {
		t.Error("FlashMem must run GPTN-2.7B within the app limit")
	}
}

// TestDegradedHardware injects hardware degradation and checks the system
// degrades gracefully rather than breaking invariants: a device with
// crippled disk and tiny memory still produces valid runs.
func TestDegradedHardware(t *testing.T) {
	dev := flashmem.XiaomiMi6()
	dev.DiskBW = units.GBps(0.1)
	dev.AppLimit = 1 * units.GB
	rt := flashmem.New(dev, flashmem.WithSolverBudget(40*time.Millisecond, 2500))
	m, err := rt.Load("ViT")
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.IntegratedMS <= 0 {
		t.Fatal("degenerate run on degraded hardware")
	}
	// ~200 MB of fp16 weights over 0.1 GB/s: the disk floor alone is ~1.9 s.
	if res.IntegratedMS < 1800 {
		t.Errorf("integrated %v ms below the physical disk floor", res.IntegratedMS)
	}
	if res.OOM {
		t.Error("ViT streaming must fit in 1 GB")
	}
}

// TestMemoryPriorityVsLatencyPriority exercises the §3.2 hyperparameter
// guidance: memory priority (small M_peak, high λ) must not use more
// average memory than latency priority (large M_peak).
func TestMemoryPriorityVsLatencyPriority(t *testing.T) {
	budget := flashmem.WithSolverBudget(40*time.Millisecond, 2500)
	memRT := flashmem.New(flashmem.OnePlus12(), budget,
		flashmem.WithMPeak(32*units.MB), flashmem.WithLambda(0.9))
	latRT := flashmem.New(flashmem.OnePlus12(), budget,
		flashmem.WithMPeak(units.GB), flashmem.WithLambda(0.5))

	mm, err := memRT.Load("GPTN-S")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := latRT.Load("GPTN-S")
	if err != nil {
		t.Fatal(err)
	}
	memRes, latRes := mm.Run(), lm.Run()
	// The memory-priority plan streams within a smaller arena; its peak
	// must not meaningfully exceed the latency-priority peak (both carry
	// the same flat runtime fixtures, so allow measurement slack).
	if memRes.PeakMemMB > 1.05*latRes.PeakMemMB {
		t.Errorf("memory priority peak %v above latency priority %v",
			memRes.PeakMemMB, latRes.PeakMemMB)
	}
}

// TestSessionMatchesIndividualRuns checks FIFO composition: a session of
// cold runs takes the sum of the individual cold latencies.
func TestSessionMatchesIndividualRuns(t *testing.T) {
	rt := flashmem.New(flashmem.OnePlus12(),
		flashmem.WithSolverBudget(40*time.Millisecond, 2500))
	ma, err := rt.Load("ResNet")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := rt.Load("DepthA-S")
	if err != nil {
		t.Fatal(err)
	}
	sum := ma.Run().IntegratedMS + mb.Run().IntegratedMS

	s := rt.NewSession()
	s.Add(ma)
	s.Add(mb)
	res, err := s.RunFIFO(nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := res.TotalMS - sum
	if diff < -0.5 || diff > 0.5 {
		t.Errorf("session total %v != sum of runs %v", res.TotalMS, sum)
	}
}
