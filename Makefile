# Targets mirror what .github/workflows/ci.yml runs: `make lint test-short`
# is the per-push job, `make test bench` is the nightly job, and
# `make shard-check` / `make coord-check` are the static-shard and
# coordinated-sweep jobs condensed into one machine.

GO ?= go

# The CI sharded-suite configuration: generous wall-clock budget with a
# binding branch budget keeps the solver deterministic across processes.
SWEEP_FLAGS ?= -exp table1,table6,table7,table8,fig8,warmstart,abl-cache \
	-models ViT,ResNet,GPTN-S -budget 5s -branches 1500

.PHONY: build test test-short bench bench-solver bench-server bench-trace bench-gate lint vet fmt fmt-check staticcheck shard-check coord-check chaos-check chaos-soak trace-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The CP-SAT / LC-OPG perf trajectory: cpsat micro-benchmarks, cold
# opg.Solve on the bundled Table 4 models (sequential and speculative
# pipeline), and the Table 4 sweep itself. CI's nightly job archives the
# output (via cmd/benchjson) as BENCH_solver.json; the committed
# BENCH_solver.json at the repo root is the regression-gate baseline.
bench-solver:
	$(GO) test -run '^$$' -bench 'BenchmarkKnapsack|BenchmarkImplicationChain' -benchtime=3x ./internal/cpsat
	$(GO) test -run '^$$' -bench 'BenchmarkColdSolve' -benchtime=1x ./internal/opg
	$(GO) test -run '^$$' -bench 'BenchmarkTable4Solver' -benchtime=1x .

# The request-driven serving trajectory: sustained plan-requests/sec with
# p99 against a warm cache, the same path under client parallelism, and
# the end-to-end cold miss (queue + worker pool + solve) for contrast.
# CI's nightly job archives the output as BENCH_server.json.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkPlanServe' -benchtime=100x ./internal/server

# The churn-resilience trajectory: incremental plan repair vs a cold
# re-solve on a Llama2-70B memory-budget drop (the headline repair ≪ cold
# claim), the greedy degradation patch, and repair under a thermal
# transition (every capacity changes, so this one honestly approaches a
# cold solve). CI's nightly job archives the output as BENCH_trace.json;
# the committed BENCH_trace.json is the regression-gate baseline.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkRepairBudgetDrop70B|BenchmarkColdSolveBudgetDrop70B|BenchmarkGreedyPatch70B|BenchmarkRepairThrottle70B' -benchtime=3x ./internal/opg

# The solver-perf regression gate (CI quick job): rerun the solver
# benchmarks and fail on any >2x ns/op regression against the committed
# baseline. The bench run lands in its own file first so a crashing
# benchmark fails the gate instead of being parsed away by the pipe, and
# the compare normalizes every ratio by the median ratio of the shared
# benchmarks — measured in the same run — so the baseline host's speed
# cancels, runner hardware spread is tolerated, and no single noisy
# sample can rescale the verdicts. Three scoping rules keep it sound:
# *Parallel benchmarks are advisory-only (ns/op scales with core count,
# which a scalar-speed reference cannot cancel); sub-50ms benchmarks are
# advisory for the wall-clock verdict (one GC pause can double a 6ms
# sample); and the deterministic `branches` counter is gated raw — it is
# machine- and noise-independent, so search-behavior regressions are
# caught even where wall-clock cannot be trusted. Known blind spot: a
# regression slowing every benchmark uniformly at unchanged branch counts
# is indistinguishable from a slow runner here; the nightly
# BENCH_solver.json artifacts exist to catch that by trajectory.
# Refresh the baseline
# deliberately with `make bench-solver | go run ./cmd/benchjson >
# BENCH_solver.json` when a real solver change shifts the trajectory.
bench-gate:
	@tmp=$$(mktemp) && txt=$$(mktemp) && trap 'rm -f "$$tmp" "$$txt"' EXIT && \
	$(MAKE) --no-print-directory bench-solver > $$txt && \
	$(GO) run ./cmd/benchjson < $$txt > $$tmp && \
	$(GO) run ./cmd/benchjson compare -max-ratio 2.0 -ref median \
		-advisory Parallel -counter branches -min-ns 50000000 \
		BENCH_solver.json $$tmp
	@tmp=$$(mktemp) && txt=$$(mktemp) && trap 'rm -f "$$tmp" "$$txt"' EXIT && \
	$(MAKE) --no-print-directory bench-server > $$txt && \
	$(GO) run ./cmd/benchjson < $$txt > $$tmp && \
	$(GO) run ./cmd/benchjson compare -max-ratio 2.0 -ref median \
		-advisory Parallel -min-ns 50000000 \
		BENCH_server.json $$tmp
	@tmp=$$(mktemp) && txt=$$(mktemp) && trap 'rm -f "$$tmp" "$$txt"' EXIT && \
	$(MAKE) --no-print-directory bench-trace > $$txt && \
	$(GO) run ./cmd/benchjson < $$txt > $$tmp && \
	$(GO) run ./cmd/benchjson compare -max-ratio 2.0 -ref median \
		-advisory Parallel -counter resolved -min-ns 50000000 \
		BENCH_trace.json $$tmp

lint: fmt-check vet staticcheck

vet:
	$(GO) vet ./...

# Runs staticcheck when it is installed (CI installs it; locally it is
# optional).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Runs the experiment suite as three shards plus a merge, and checks the
# merged output is byte-identical to an unsharded run and that the merged
# plan-cache snapshot warm-starts with zero re-solves. Scratch space is a
# fresh mktemp dir so concurrent invocations cannot clobber each other.
shard-check:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o $$dir/flashbench ./cmd/flashbench && \
	cd $$dir && \
	for i in 0 1 2; do \
		./flashbench $(SWEEP_FLAGS) -shard $$i/3 -partial partial-$$i.json -cache cache-$$i.json || exit 1; \
	done && \
	./flashbench merge -caches cache-0.json,cache-1.json,cache-2.json \
		-cache-out merged-cache.json partial-0.json partial-1.json partial-2.json > merged.txt && \
	./flashbench $(SWEEP_FLAGS) > full.txt && \
	diff full.txt merged.txt && \
	./flashbench $(SWEEP_FLAGS) -cache merged-cache.json > warm.txt 2> warm.log && \
	grep -q ' / 0 misses' warm.log && diff full.txt warm.txt && \
	echo "shard-check: merged output byte-identical; warm start had zero re-solves"

# Runs the experiment suite through the work-stealing coordinator with
# three local worker processes — the reference run's snapshot seeding
# batch sizing — and checks the coordinated output is byte-identical to
# the unsharded run and that the merged worker snapshots warm-start with
# zero re-solves. The CI coordinate job condensed into one machine.
coord-check:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o $$dir/flashbench ./cmd/flashbench && \
	cd $$dir && \
	./flashbench $(SWEEP_FLAGS) -cache seed-cache.json > full.txt && \
	{ ./flashbench $(SWEEP_FLAGS) -coordinator 127.0.0.1:9355 \
		-seed-costs seed-cache.json -cache coord-cache.json \
		-stats-out coord-stats.json > coord.txt 2> coord.log & \
	  pid=$$!; \
	  for w in 1 2 3; do \
		./flashbench $(SWEEP_FLAGS) -worker http://127.0.0.1:9355 \
			-worker-name w$$w 2> worker-$$w.log & \
	  done; \
	  wait $$pid; } && \
	diff full.txt coord.txt && \
	./flashbench $(SWEEP_FLAGS) -cache coord-cache.json > warm.txt 2> warm.log && \
	grep -q ' / 0 misses' warm.log && diff full.txt warm.txt && \
	cat coord-stats.json && \
	echo "coord-check: coordinated output byte-identical; warm start had zero re-solves"

# The seeded fault-injection soak (CI quick job): coordinator + workers +
# plan server under an injected fault schedule — flaky worker HTTP,
# coordinator 500s and a mid-sweep coordinator crash/restart from the lease
# journal, failing/slow/panicking solves, short-written and corrupted
# snapshots — asserting no lost cells, output byte-identical to a fault-free
# run, every served plan byte-identical to a direct solve, Retry-After on
# every retryable response, and corrupt snapshots quarantined rather than
# fatal. Deterministic: CHAOS_SEED replays the identical fault schedule.
CHAOS_SEED ?= 1
chaos-check:
	$(GO) run ./cmd/flashbench -chaos -chaos-seed $(CHAOS_SEED)

# The nightly-sized soak: a larger grid and request budget, with the
# machine-readable report written for archiving.
chaos-soak:
	$(GO) run ./cmd/flashbench -chaos -chaos-seed $(CHAOS_SEED) \
		-chaos-cells 120 -chaos-requests 250 -chaos-report chaos-report.json

# The device-churn replay check (CI quick job): generate a short seeded
# device-condition trace (model load/unload, memory-budget steps, thermal
# throttling) and replay it end to end through the resilience engine —
# incremental repair, the degradation ladder, and shedding all exercised.
# flashbench exits non-zero on any invariant violation (a lost request, or
# a served plan invalid for the device state it was served under).
# Deterministic: TRACE_SEED replays the identical scenario.
TRACE_SEED ?= 7
trace-check:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/flashbench -trace-gen $$dir/churn.json \
		-trace-seed $(TRACE_SEED) -trace-events 60 \
		-trace $$dir/churn.json -trace-report $$dir/churn-report.json

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
