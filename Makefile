# Targets mirror what .github/workflows/ci.yml runs: `make lint test-short`
# is the per-push job, `make test bench` is the nightly job.

GO ?= go

.PHONY: build test test-short bench lint vet fmt fmt-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

lint: fmt-check vet

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
