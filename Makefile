# Targets mirror what .github/workflows/ci.yml runs: `make lint test-short`
# is the per-push job, `make test bench` is the nightly job, and
# `make shard-check` is the sharded-matrix job condensed into one machine.

GO ?= go

# The CI sharded-suite configuration: generous wall-clock budget with a
# binding branch budget keeps the solver deterministic across processes.
SWEEP_FLAGS ?= -exp table1,table6,table7,table8,fig8,warmstart,abl-cache \
	-models ViT,ResNet,GPTN-S -budget 5s -branches 1500

.PHONY: build test test-short bench bench-solver lint vet fmt fmt-check staticcheck shard-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The CP-SAT / LC-OPG perf trajectory: cpsat micro-benchmarks, cold
# opg.Solve on the bundled Table 4 models, and the Table 4 sweep itself.
# CI's nightly job archives the output (via cmd/benchjson) as
# BENCH_solver.json so future solver changes have a baseline to beat.
bench-solver:
	$(GO) test -run '^$$' -bench 'BenchmarkKnapsack|BenchmarkImplicationChain' -benchtime=3x ./internal/cpsat
	$(GO) test -run '^$$' -bench 'BenchmarkColdSolve' -benchtime=1x ./internal/opg
	$(GO) test -run '^$$' -bench 'BenchmarkTable4Solver' -benchtime=1x .

lint: fmt-check vet staticcheck

vet:
	$(GO) vet ./...

# Runs staticcheck when it is installed (CI installs it; locally it is
# optional).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Runs the experiment suite as three shards plus a merge, and checks the
# merged output is byte-identical to an unsharded run and that the merged
# plan-cache snapshot warm-starts with zero re-solves. Scratch space is a
# fresh mktemp dir so concurrent invocations cannot clobber each other.
shard-check:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o $$dir/flashbench ./cmd/flashbench && \
	cd $$dir && \
	for i in 0 1 2; do \
		./flashbench $(SWEEP_FLAGS) -shard $$i/3 -partial partial-$$i.json -cache cache-$$i.json || exit 1; \
	done && \
	./flashbench merge -caches cache-0.json,cache-1.json,cache-2.json \
		-cache-out merged-cache.json partial-0.json partial-1.json partial-2.json > merged.txt && \
	./flashbench $(SWEEP_FLAGS) > full.txt && \
	diff full.txt merged.txt && \
	./flashbench $(SWEEP_FLAGS) -cache merged-cache.json > warm.txt 2> warm.log && \
	grep -q ' / 0 misses' warm.log && diff full.txt warm.txt && \
	echo "shard-check: merged output byte-identical; warm start had zero re-solves"

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
