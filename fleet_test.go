package flashmem

import (
	"bytes"
	"sync"
	"testing"
)

func TestFleetSharesRuntimesAndCache(t *testing.T) {
	f := NewFleet(nil, deterministicBudget())

	if rt1, rt2 := f.Runtime(OnePlus12()), f.Runtime(OnePlus12()); rt1 != rt2 {
		t.Error("same device produced two runtimes")
	}
	if f.Runtime(OnePlus12()) == f.Runtime(XiaomiMi6()) {
		t.Error("distinct devices share a runtime")
	}

	// A solve done for one device is a hit on the next load of the same
	// key; a different device is a distinct key and must miss.
	if _, err := f.Load(OnePlus12(), "ViT"); err != nil {
		t.Fatal(err)
	}
	m, err := f.Load(OnePlus12(), "ViT")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Plan().FromCache {
		t.Error("same-device reload missed the fleet cache")
	}
	other, err := f.Load(XiaomiMi6(), "ViT")
	if err != nil {
		t.Fatal(err)
	}
	if other.Plan().FromCache {
		t.Error("different device falsely hit the fleet cache")
	}
	if got := f.Cache().Len(); got != 2 {
		t.Errorf("fleet cache holds %d plans, want 2", got)
	}
}

func TestFleetConcurrentMultiDeviceLoads(t *testing.T) {
	f := NewFleet(nil, deterministicBudget())
	devices := []Device{OnePlus12(), XiaomiMi6()}
	const loadsPerDevice = 4

	plans := make([][]byte, len(devices)*loadsPerDevice)
	var wg sync.WaitGroup
	for d := range devices {
		for i := 0; i < loadsPerDevice; i++ {
			wg.Add(1)
			go func(d, i int) {
				defer wg.Done()
				m, err := f.Load(devices[d], "ResNet")
				if err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				if err := m.EncodePlan(&buf); err != nil {
					t.Error(err)
					return
				}
				plans[d*loadsPerDevice+i] = buf.Bytes()
			}(d, i)
		}
	}
	wg.Wait()

	// Every load of one device serves the same plan bytes, whichever
	// goroutine solved it.
	for d := range devices {
		base := plans[d*loadsPerDevice]
		for i := 1; i < loadsPerDevice; i++ {
			if !bytes.Equal(base, plans[d*loadsPerDevice+i]) {
				t.Errorf("%s: load %d produced different plan bytes", devices[d].Name, i)
			}
		}
	}
	if got := f.Cache().Len(); got != len(devices) {
		t.Errorf("fleet cache holds %d plans, want %d", got, len(devices))
	}
}
